package gfd

// Golden mining test: runs full discovery on a small checked-in TSV graph
// and compares the canonicalized GFD output byte-for-byte against a
// committed golden file. Layout rewrites of the match/discovery stack
// (e.g. the columnar table storage) must leave mining output identical;
// regenerate deliberately with `go test -run TestGoldenMining -update .`.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/parallel"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

const (
	goldenGraphPath = "internal/testutil/testdata/golden_graph.tsv"
	goldenGFDsPath  = "internal/testutil/testdata/golden_gfds.txt"
)

// goldenOptions is the fixed discovery configuration of the golden run.
// Changing it invalidates the golden file on purpose.
func goldenOptions() DiscoverOptions {
	return DiscoverOptions{
		K:                3,
		Support:          2,
		MaxX:             2,
		ConstantsPerAttr: 3,
		WildcardNodes:    true,
		MaxNegatives:     200,
	}
}

// canonicalize renders a discovery result as sorted, self-contained lines:
// one per mined GFD, carrying its canonical key, support and level.
func canonicalize(res *DiscoverResult) string {
	var lines []string
	for _, m := range res.Positives {
		lines = append(lines, fmt.Sprintf("P\t%s\tsupp=%d\tlevel=%d", m.GFD.Key(), m.Support, m.Level))
	}
	for _, m := range res.Negatives {
		lines = append(lines, fmt.Sprintf("N\t%s\tsupp=%d\tlevel=%d", m.GFD.Key(), m.Support, m.Level))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func loadGoldenGraph(t *testing.T) *Graph {
	t.Helper()
	f, err := os.Open(goldenGraphPath)
	if err != nil {
		t.Fatalf("open golden graph: %v", err)
	}
	defer f.Close()
	g, err := ReadGraph(f)
	if err != nil {
		t.Fatalf("read golden graph: %v", err)
	}
	return g
}

func TestGoldenMining(t *testing.T) {
	g := loadGoldenGraph(t)
	res := Discover(g, goldenOptions())
	if len(res.Positives) == 0 || len(res.Negatives) == 0 {
		t.Fatalf("golden run looks degenerate: %d positives, %d negatives",
			len(res.Positives), len(res.Negatives))
	}
	got := canonicalize(res)

	if *updateGolden {
		if err := os.WriteFile(goldenGFDsPath, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		t.Logf("golden file rewritten: %d GFDs", len(res.Positives)+len(res.Negatives))
		return
	}
	want, err := os.ReadFile(goldenGFDsPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("mining output diverged from golden file.\n"+
			"If the change is intentional, regenerate with: go test -run TestGoldenMining -update .\n"+
			"--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGoldenMiningSnapshot locks the persistent path to the same bytes:
// serialising the golden graph to a binary snapshot, reopening it as a
// zero-copy mmap-backed view and mining straight off the mapped bytes
// must produce output byte-identical to the in-memory sequential run.
func TestGoldenMiningSnapshot(t *testing.T) {
	g := loadGoldenGraph(t)
	want, err := os.ReadFile(goldenGFDsPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	path := filepath.Join(t.TempDir(), "golden.gfds")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(f, g); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("open snapshot: %v", err)
	}
	res := DiscoverView(m, goldenOptions())
	// Canonicalize before Close: rendering copies the literal strings out
	// of the mapping.
	got := canonicalize(res)
	if err := m.Close(); err != nil {
		t.Fatalf("close snapshot: %v", err)
	}
	if got != string(want) {
		t.Fatalf("snapshot-backed mining diverged from golden output.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGoldenMiningParallel locks the distributed path to the same bytes:
// ParDis over fragment-local SubCSR indexes must mine exactly the golden
// GFD set, for several worker counts — including uneven ones, where
// fragments and node-ownership ranges differ in size.
func TestGoldenMiningParallel(t *testing.T) {
	g := loadGoldenGraph(t)
	want, err := os.ReadFile(goldenGFDsPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	for _, workers := range []int{1, 2, 3, 4, 5, 7} {
		res := DiscoverParallel(g, goldenOptions(), workers)
		if got := canonicalize(res.DiscoverResult); got != string(want) {
			t.Fatalf("parallel mining (n=%d) diverged from golden output.\n--- got ---\n%s--- want ---\n%s",
				workers, got, want)
		}
	}
}

// TestGoldenMiningSkewed locks parallel mining on the workload the
// work-stealing path was built for: a power-law graph whose hub runs make
// static per-worker chunks unbalanced. The sequential run is the in-test
// reference; every worker count must reproduce it byte-for-byte through
// both the default (Makespan, static-chunk) pipeline and the concurrent
// engine with work stealing enabled. The CI race job runs this under
// -race, checking the steal cursor and chunk-order merge as well.
func TestGoldenMiningSkewed(t *testing.T) {
	g := dataset.Synthetic(dataset.SyntheticConfig{Nodes: 300, Edges: 1500, Seed: 8, Skew: 1.2})
	opts := DiscoverOptions{
		K:                2,
		Support:          5,
		MaxX:             1,
		ConstantsPerAttr: 3,
		WildcardNodes:    true,
		MaxNegatives:     150,
	}
	ref := Discover(g, opts)
	if len(ref.Positives) == 0 || len(ref.Negatives) == 0 {
		t.Fatalf("skewed reference run looks degenerate: %d positives, %d negatives",
			len(ref.Positives), len(ref.Negatives))
	}
	want := canonicalize(ref)

	for _, workers := range []int{1, 2, 3, 4, 5, 7} {
		res := DiscoverParallel(g, opts, workers)
		if got := canonicalize(res.DiscoverResult); got != want {
			t.Fatalf("parallel mining (n=%d) diverged from sequential on skewed graph.\n--- got ---\n%s--- want ---\n%s",
				workers, got, want)
		}
		eng := cluster.New(cluster.Config{Workers: workers, Mode: cluster.Concurrent})
		stolen := parallel.Mine(context.Background(), g, opts, eng,
			parallel.Options{LoadBalance: true, WorkSteal: true})
		if got := canonicalize(stolen.Result); got != want {
			t.Fatalf("work-stealing mining (n=%d) diverged from sequential on skewed graph.\n--- got ---\n%s--- want ---\n%s",
				workers, got, want)
		}
	}
}
