package gfd

// Trace-enabled golden mining tests: enabling Options.Trace must leave
// the mined output byte-identical on every execution path — sequential,
// parallel Makespan, and the concurrent engine with work stealing — and
// the span log itself must be structurally sound: unique IDs, every
// parent referring to an earlier span, and the expected phase spans
// present. The CI race job runs these under -race, which additionally
// checks that concurrent span writes from stealing workers and comm
// goroutines never tear.

import (
	"context"
	"os"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// collectSpans parses the tracer's JSONL buffer and verifies the
// structural invariants every well-formed trace must satisfy.
func collectSpans(t *testing.T, buf *strings.Builder, wantNames ...string) []obs.SpanRecord {
	t.Helper()
	spans, err := obs.ReadSpans(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("parse trace: %v", err)
	}
	ids := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		if s.ID == 0 {
			t.Fatalf("span %q has id 0 (reserved for the root)", s.Name)
		}
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d (%q)", s.ID, s.Name)
		}
		ids[s.ID] = true
	}
	names := make(map[string]int, len(spans))
	for _, s := range spans {
		names[s.Name]++
		if s.Parent == 0 {
			continue
		}
		if !ids[s.Parent] {
			t.Fatalf("span %d (%q) parented to unknown span %d", s.ID, s.Name, s.Parent)
		}
		if s.Parent >= s.ID {
			t.Fatalf("span %d (%q) parented to later span %d", s.ID, s.Name, s.Parent)
		}
	}
	for _, want := range wantNames {
		if names[want] == 0 {
			t.Fatalf("trace has no %q spans (got %v)", want, names)
		}
	}
	return spans
}

func TestGoldenMiningTraced(t *testing.T) {
	g := loadGoldenGraph(t)
	want, err := os.ReadFile(goldenGFDsPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}

	var buf strings.Builder
	tr := obs.NewTracer(&buf)
	opts := goldenOptions()
	opts.Trace = tr
	res := Discover(g, opts)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := canonicalize(res); got != string(want) {
		t.Fatalf("traced sequential mining diverged from golden output.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	collectSpans(t, &buf, "level")
}

func TestGoldenMiningTracedParallel(t *testing.T) {
	g := loadGoldenGraph(t)
	want, err := os.ReadFile(goldenGFDsPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	for _, workers := range []int{1, 2, 3, 4, 5, 7} {
		var buf strings.Builder
		tr := obs.NewTracer(&buf)
		opts := goldenOptions()
		opts.Trace = tr
		eng := cluster.New(cluster.Config{Workers: workers, Trace: tr})
		pr := parallel.Mine(context.Background(), g, opts, eng, parallel.Options{LoadBalance: true})
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if got := canonicalize(pr.Result); got != string(want) {
			t.Fatalf("traced parallel mining (n=%d) diverged from golden output.\n--- got ---\n%s--- want ---\n%s",
				workers, got, want)
		}
		// Makespan runs account supersteps as events; levels come from
		// the shared discovery driver.
		collectSpans(t, &buf, "level", "account")
	}
}

// TestGoldenMiningTracedSteal runs the concurrent engine with work
// stealing and tracing on together: stealing workers race to extend
// parent-row chunks while the tracer's scope register is live, and the
// output must still match the untraced sequential reference.
func TestGoldenMiningTracedSteal(t *testing.T) {
	g := loadGoldenGraph(t)
	want, err := os.ReadFile(goldenGFDsPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	for _, workers := range []int{1, 2, 3, 4, 5, 7} {
		var buf strings.Builder
		tr := obs.NewTracer(&buf)
		opts := goldenOptions()
		opts.Trace = tr
		eng := cluster.New(cluster.Config{Workers: workers, Mode: cluster.Concurrent, Trace: tr})
		pr := parallel.Mine(context.Background(), g, opts, eng,
			parallel.Options{LoadBalance: true, WorkSteal: true})
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if got := canonicalize(pr.Result); got != string(want) {
			t.Fatalf("traced work-stealing mining (n=%d) diverged from golden output.\n--- got ---\n%s--- want ---\n%s",
				workers, got, want)
		}
		// Concurrent mode runs real supersteps as scoped spans.
		collectSpans(t, &buf, "level", "superstep")
	}
}
