// Command gfddiscover mines graph functional dependencies from a property
// graph: a TSV graph file, a binary snapshot (.gfds, opened zero-copy via
// mmap — the format is auto-detected by magic bytes), or one of the
// built-in dataset generators. It prints the discovered cover with
// supports, sequentially or on the simulated cluster. With -fragdir the
// parallel run persists every fragment as a snapshot and the workers
// re-attach and join against the mmap-backed fragment views.
//
// Examples:
//
//	gfddiscover -dataset yago2 -scale 500 -k 3 -sigma 25
//	gfddiscover -in graph.tsv -k 3 -sigma 100 -workers 8
//	gfddiscover -in graph.gfds -k 3 -sigma 100
//	gfddiscover -in graph.gfds -workers 4 -fragdir /tmp/frags
//
// With -serve the parallel run becomes distributed: every worker except
// worker 0 is an in-process fragment server dialed over loopback TCP,
// and -fault injects deterministic transport faults — the mining output
// must stay identical, absorbed by the deadline/retry/failover
// machinery.
//
//	gfddiscover -in graph.gfds -workers 4 -fragdir /tmp/frags -serve
//	gfddiscover -in graph.gfds -workers 4 -fragdir /tmp/frags -serve -fault drop=0.05,seed=1
//
// With -cluster the coordinator serves a membership registry instead of
// being handed addresses: external gfdfrag -announce servers register
// themselves, get health-checked (healthy → suspect → dead), and worker
// slots route to whoever legitimately holds their fragment — adopted at
// superstep boundaries when members join or are replaced mid-run, failed
// over to the spill file when they die. -hedge-after additionally races
// slow remote join shares against the local spill replica.
//
//	gfddiscover -in graph.gfds -workers 3 -fragdir /tmp/frags -cluster 127.0.0.1:7700
//	gfddiscover -in graph.gfds -workers 3 -fragdir /tmp/frags -cluster :7700 -hedge-after 50ms -health-interval 200ms
//
// Observability: -trace writes a structured JSONL span log of the run
// (levels, supersteps, shares, hedge races, failovers — summarize with
// gfdbench -trace-report), and -debug-addr serves /metrics (Prometheus
// text), /cluster (membership + RTT quantiles, cluster runs) and
// /debug/pprof live while the run executes. Neither changes the mined
// output.
//
//	gfddiscover -in graph.gfds -workers 4 -trace run.jsonl -debug-addr 127.0.0.1:6060
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	gfdlib "repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/remote"
)

func main() { os.Exit(run()) }

// run is the real main: it returns the exit status instead of calling
// os.Exit so deferred cleanup — notably flushing the pprof profiles —
// always runs.
func run() int {
	in := flag.String("in", "", "input graph, TSV or snapshot (.gfds), auto-detected (overrides -dataset)")
	ds := flag.String("dataset", "yago2", "built-in dataset: yago2 | dbpedia | imdb | synthetic")
	scale := flag.Int("scale", 500, "dataset generator scale")
	seed := flag.Int64("seed", 42, "generator seed")
	k := flag.Int("k", 3, "pattern variable bound k")
	sigma := flag.Int("sigma", 25, "support threshold σ")
	maxX := flag.Int("maxx", 1, "max LHS literals on positive GFDs")
	workers := flag.Int("workers", 0, "simulated cluster workers (0 = sequential)")
	fragDir := flag.String("fragdir", "", "spill fragments as snapshots to this dir and mine over the mmap-backed views (needs -workers)")
	serve := flag.Bool("serve", false, "serve workers 1..n-1 as remote fragment servers over loopback TCP (needs -fragdir)")
	faultSpec := flag.String("fault", "", "with -serve: inject transport faults, e.g. drop=0.05,corrupt=0.01,seed=1")
	clusterAddr := flag.String("cluster", "", "serve a membership registry on this address and mine against announced gfdfrag servers (needs -fragdir, -workers >= 2)")
	clusterWait := flag.Duration("cluster-wait", 30*time.Second, "with -cluster: how long to wait for workers 1..n-1 to announce before mining starts")
	hedgeAfter := flag.Duration("hedge-after", 0, "with -cluster: race remote join shares outstanding past this delay against the local spill replica")
	healthInterval := flag.Duration("health-interval", time.Second, "with -cluster: heartbeat cadence of the member health monitor")
	dieAfter := flag.Int("die-after", 0, "with -serve: kill every in-process fragment server after serving this many frames (forces failover)")
	restartAfter := flag.Duration("restart-after", 0, "with -serve and -die-after: resurrect dead servers on their original address after this delay")
	failback := flag.Duration("failback", 0, "with -serve/-cluster: failed-over fragments probe their server at this interval and rejoin on recovery")
	negatives := flag.Int("negatives", 50, "max negative GFDs to mine (-1 disables)")
	showAll := flag.Bool("all", false, "print the full mined set, not just the cover")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	tracePath := flag.String("trace", "", "write a structured span trace of the run to this JSONL file (summarize with gfdbench -trace-report)")
	debugAddr := flag.String("debug-addr", "", "serve live introspection (/metrics, /cluster, /debug/pprof) on this address for the run")
	flag.Parse()

	prof, err := gfdlib.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gfddiscover: %v\n", err)
		return 1
	}
	defer prof.Stop()

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer, err = obs.StartTrace(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gfddiscover: %v\n", err)
			return 1
		}
		defer tracer.Close()
	}

	g, err := gfdlib.LoadOrGenerate(*in, *ds, *scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gfddiscover: %v\n", err)
		return 1
	}
	fmt.Printf("graph: %v\n", g)

	opts := gfdlib.DiscoverOptions(*k, *sigma)
	opts.MaxX = *maxX
	opts.MaxNegatives = *negatives
	opts.Trace = tracer

	// The cluster path owns the debug endpoint itself (it serves /cluster
	// from the live registry); every other path gets metrics and pprof.
	if *debugAddr != "" && *clusterAddr == "" {
		ds, err := obs.ServeDebug(*debugAddr, obs.Default, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gfddiscover: debug listen %s: %v\n", *debugAddr, err)
			return 1
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "gfddiscover: debug endpoint on http://%s\n", ds.Addr())
	}

	start := time.Now()
	var report *gfdlib.Report
	if *clusterAddr != "" {
		if *fragDir == "" || *workers < 2 {
			fmt.Fprintln(os.Stderr, "gfddiscover: -cluster requires -fragdir and -workers >= 2")
			return 2
		}
		crt := gfdlib.ClusterRuntime{
			Addr:             *clusterAddr,
			WaitTimeout:      *clusterWait,
			HedgeAfter:       *hedgeAfter,
			HealthInterval:   *healthInterval,
			FailbackInterval: *failback,
			DebugAddr:        *debugAddr,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "gfddiscover: "+format+"\n", args...)
			},
		}
		report, err = gfdlib.DiscoverCluster(g, opts, *workers, *fragDir, crt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gfddiscover: %v\n", err)
			return 1
		}
		fmt.Printf("cluster run: %d/%d members at epoch %d, %d adoptions (%d wire bytes measured)\n",
			report.Members, *workers-1, report.Epoch, report.Adoptions, report.MeasuredBytes)
		if report.FailedOver > 0 || report.Rejoined > 0 {
			fmt.Printf("recovery: %d fragments failed over, %d rejoined their server\n",
				report.FailedOver, report.Rejoined)
		}
	} else if *serve {
		if *fragDir == "" || *workers < 2 {
			fmt.Fprintln(os.Stderr, "gfddiscover: -serve requires -fragdir and -workers >= 2")
			return 2
		}
		fault, err := remote.ParseFaultSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gfddiscover: %v\n", err)
			return 2
		}
		rt := gfdlib.RemoteRuntime{
			Fault:            fault,
			DieAfter:         *dieAfter,
			RestartAfter:     *restartAfter,
			FailbackInterval: *failback,
		}
		report, err = gfdlib.DiscoverRemote(g, opts, *workers, *fragDir, rt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gfddiscover: %v\n", err)
			return 1
		}
		fmt.Printf("distributed run: worker 0 local, workers 1..%d remote (%d wire bytes measured)\n",
			*workers-1, report.MeasuredBytes)
		if report.FailedOver > 0 || report.Rejoined > 0 {
			fmt.Printf("recovery: %d fragments failed over, %d rejoined their server\n",
				report.FailedOver, report.Rejoined)
		}
	} else if *fragDir != "" {
		if *workers < 1 {
			fmt.Fprintln(os.Stderr, "gfddiscover: -fragdir requires -workers >= 1")
			return 2
		}
		report, err = gfdlib.DiscoverSpilled(g, opts, *workers, *fragDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gfddiscover: %v\n", err)
			return 1
		}
		fmt.Printf("fragments spilled to and re-attached from %s (mmap-backed views)\n", *fragDir)
	} else {
		report = gfdlib.Discover(g, opts, *workers)
	}
	fmt.Printf("mined %d positives, %d negatives in %v (%d patterns, %d candidates)\n",
		report.Positives, report.Negatives, time.Since(start).Round(time.Millisecond),
		report.Patterns, report.Candidates)
	if report.SimulatedTime > 0 {
		fmt.Printf("simulated parallel response time (n=%d): %v\n", *workers, report.SimulatedTime.Round(time.Microsecond))
		fmt.Printf("fragment-local CSR views (edges per worker): %v\n", report.FragmentEdges)
	}
	if report.StealChunks > 0 || report.HedgesFired > 0 {
		fmt.Printf("work: %d steal chunks, %d hedged reads fired (%d won by the local replica)\n",
			report.StealChunks, report.HedgesFired, report.HedgesWon)
	}
	fmt.Printf("cover: %d GFDs\n\n", len(report.Cover))
	for _, m := range report.Cover {
		fmt.Println(" ", m.Describe())
	}
	if *showAll {
		fmt.Printf("\nfull mined set (%d):\n", len(report.All))
		for _, m := range report.All {
			fmt.Println(" ", m.Describe())
		}
	}
	return 0
}
