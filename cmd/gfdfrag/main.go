// Command gfdfrag is a ParDis fragment server: it mmaps one spilled
// fragment snapshot (frag-N.gfds, written by a coordinator's Spill) and
// serves that worker's share of the distributed incremental join over
// the remote package's frame protocol. A coordinator (gfddiscover, or
// any remote.Dial client) joins row-table batches against it exactly as
// it would against a local mmap view — the mining output is identical.
//
// The process is stateless beyond its mapping: killing it mid-mine is
// always safe, because the coordinator fails over to the same frag-N.gfds
// file the server was started from.
//
// Examples:
//
//	gfdfrag -frag /data/frags/frag-1.gfds -listen :7701
//	gfdfrag -frag frag-0.gfds -listen 127.0.0.1:0            # prints the bound port
//	gfdfrag -frag frag-2.gfds -listen :7702 -fault drop=0.05,seed=1
//	gfdfrag -frag frag-1.gfds -listen :7701 -die-after 100   # crash-test the coordinator
//	gfdfrag -frag frag-1.gfds -listen :7701 -die-after 100 -resurrect-after 500ms
//
// With -resurrect-after the -die-after crash does not exit the process:
// the server drops every connection and its listener (the coordinator
// sees exactly a worker loss), then rebinds the same address after the
// delay and serves again — this time without the death trap — so a
// failback-enabled coordinator rejoins it mid-run.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/remote"
	"repro/internal/store"
)

func main() { os.Exit(run()) }

// run is the real main: it returns the exit status so the deferred
// profile flush always runs; the -die-after crash path flushes
// explicitly before its abrupt exit.
func run() int {
	frag := flag.String("frag", "", "fragment snapshot to serve (a frag-N.gfds written by Spill)")
	listen := flag.String("listen", "127.0.0.1:0", "listen address (port 0 picks a free port, printed on stdout)")
	fault := flag.String("fault", "", "fault injection spec: drop=P,corrupt=P,delay=D,closeafter=N,seed=S")
	dieAfter := flag.Int("die-after", 0, "exit(3) abruptly after serving this many frames (simulates a worker crash)")
	resurrectAfter := flag.Duration("resurrect-after", 0, "with -die-after: come back on the same address after this delay instead of exiting (dies once)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (flushed even on -die-after)")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *frag == "" {
		fmt.Fprintln(os.Stderr, "gfdfrag: -frag is required")
		return 2
	}
	spec, err := remote.ParseFaultSpec(*fault)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gfdfrag: %v\n", err)
		return 2
	}
	prof, err := cli.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gfdfrag: %v\n", err)
		return 1
	}
	defer prof.Stop()
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gfdfrag: "+format+"\n", args...)
	}
	opts := remote.ServerOptions{
		Fault:    spec,
		DieAfter: *dieAfter,
		Logf:     logf,
	}
	if *dieAfter > 0 && *resurrectAfter <= 0 {
		opts.OnDeath = func() {
			// An abrupt exit, not a graceful drain: the coordinator must see
			// the same failure a kill -9 would produce. The profiles are
			// flushed first — a crash-test run is exactly when they matter.
			fmt.Fprintf(os.Stderr, "gfdfrag: dying after %d frames (-die-after)\n", *dieAfter)
			prof.Stop()
			os.Exit(3)
		}
	}

	if *resurrectAfter > 0 {
		if err := serveResurrecting(*frag, *listen, opts, *resurrectAfter); err != nil {
			fmt.Fprintf(os.Stderr, "gfdfrag: %v\n", err)
			return 1
		}
		return 0
	}

	ready := make(chan net.Addr, 1)
	go func() {
		addr := <-ready
		// The bound address is the first stdout line — coordinators and
		// tests parse it, which is what makes -listen :0 usable.
		fmt.Printf("listening %s\n", addr)
	}()
	if err := remote.ListenAndServe(*frag, *listen, opts, ready); err != nil {
		fmt.Fprintf(os.Stderr, "gfdfrag: %v\n", err)
		return 1
	}
	return 0
}

// serveResurrecting runs the die-once-then-recover lifecycle in one
// process: serve with the death trap armed, and when DieAfter fires
// (Serve returns after the abrupt connection drop), rebind the same
// bound address after the delay and serve the same mapping indefinitely.
func serveResurrecting(fragPath, listen string, opts remote.ServerOptions, delay time.Duration) error {
	m, err := store.Open(fragPath)
	if err != nil {
		return err
	}
	defer m.Close()
	if _, has := m.Fragment(); !has {
		return fmt.Errorf("%s carries no fragment metadata (not a frag-N.gfds spill file?)", fragPath)
	}
	s, err := remote.NewServer(m, opts)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	addr := l.Addr().String()
	fmt.Printf("listening %s\n", addr)
	s.Serve(l)
	if opts.DieAfter <= 0 {
		return nil // external Close: a clean shutdown, nothing to resurrect
	}
	fmt.Fprintf(os.Stderr, "gfdfrag: died after %d frames; resurrecting on %s in %s\n", opts.DieAfter, addr, delay)
	time.Sleep(delay)
	opts.DieAfter = 0 // the recovered incarnation stays up
	s2, err := remote.NewServer(m, opts)
	if err != nil {
		return err
	}
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rebinding %s: %w", addr, err)
	}
	fmt.Printf("resurrected %s\n", addr)
	return s2.Serve(l2)
}
