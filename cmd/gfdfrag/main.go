// Command gfdfrag is a ParDis fragment server: it mmaps one spilled
// fragment snapshot (frag-N.gfds, written by a coordinator's Spill) and
// serves that worker's share of the distributed incremental join over
// the remote package's frame protocol. A coordinator (gfddiscover, or
// any remote.Dial client) joins row-table batches against it exactly as
// it would against a local mmap view — the mining output is identical.
//
// The process is stateless beyond its mapping: killing it mid-mine is
// always safe, because the coordinator fails over to the same frag-N.gfds
// file the server was started from.
//
// Examples:
//
//	gfdfrag -frag /data/frags/frag-1.gfds -listen :7701
//	gfdfrag -frag frag-0.gfds -listen 127.0.0.1:0            # prints the bound port
//	gfdfrag -frag frag-2.gfds -listen :7702 -fault drop=0.05,seed=1
//	gfdfrag -frag frag-1.gfds -listen :7701 -die-after 100   # crash-test the coordinator
//	gfdfrag -frag frag-1.gfds -listen :7701 -die-after 100 -resurrect-after 500ms
//	gfdfrag -frag frag-1.gfds -listen :7701 -announce 127.0.0.1:7700
//
// With -announce the server registers itself with a coordinator's
// membership registry (gfddiscover -cluster) once it is listening: the
// coordinator learns the worker slot, address, node range, edge count
// and node-store fingerprint, validates them against its own cut, and
// routes that slot's join shares to this server — including mid-run,
// if the coordinator was already mining the slot from its spill file.
// The announce retries with backoff, so starting servers before the
// coordinator is fine. With -resurrect-after, the recovered incarnation
// re-announces.
//
// With -resurrect-after the -die-after crash does not exit the process:
// the server drops every connection and its listener (the coordinator
// sees exactly a worker loss), then rebinds the same address after the
// delay and serves again — this time without the death trap — so a
// failback-enabled coordinator rejoins it mid-run.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/remote"
	"repro/internal/store"
)

func main() { os.Exit(run()) }

// tracer records the server lifecycle (serve, announce, die, resurrect)
// when -trace is set; the nil zero value makes every call a no-op.
var tracer *obs.Tracer

// run is the real main: it returns the exit status so the deferred
// profile flush always runs; the -die-after crash path flushes
// explicitly before its abrupt exit.
func run() int {
	frag := flag.String("frag", "", "fragment snapshot to serve (a frag-N.gfds written by Spill)")
	listen := flag.String("listen", "127.0.0.1:0", "listen address (port 0 picks a free port, printed on stdout)")
	fault := flag.String("fault", "", "fault injection spec: drop=P,corrupt=P,delay=D,closeafter=N,seed=S")
	dieAfter := flag.Int("die-after", 0, "exit(3) abruptly after serving this many frames (simulates a worker crash)")
	resurrectAfter := flag.Duration("resurrect-after", 0, "with -die-after: come back on the same address after this delay instead of exiting (dies once)")
	announce := flag.String("announce", "", "coordinator registry address (gfddiscover -cluster) to announce this fragment server to")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (flushed even on -die-after)")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	tracePath := flag.String("trace", "", "write lifecycle events (serve, announce, die, resurrect) to this JSONL file (flushed even on -die-after)")
	debugAddr := flag.String("debug-addr", "", "serve live introspection (/metrics, /debug/pprof) on this address")
	flag.Parse()

	if *frag == "" {
		fmt.Fprintln(os.Stderr, "gfdfrag: -frag is required")
		return 2
	}
	spec, err := remote.ParseFaultSpec(*fault)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gfdfrag: %v\n", err)
		return 2
	}
	prof, err := cli.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gfdfrag: %v\n", err)
		return 1
	}
	defer prof.Stop()
	if *tracePath != "" {
		tracer, err = obs.StartTrace(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gfdfrag: %v\n", err)
			return 1
		}
		defer tracer.Close()
	}
	if *debugAddr != "" {
		ds, err := obs.ServeDebug(*debugAddr, obs.Default, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gfdfrag: debug listen %s: %v\n", *debugAddr, err)
			return 1
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "gfdfrag: debug endpoint on http://%s\n", ds.Addr())
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gfdfrag: "+format+"\n", args...)
	}
	opts := remote.ServerOptions{
		Fault:    spec,
		DieAfter: *dieAfter,
		Logf:     logf,
	}
	if *dieAfter > 0 && *resurrectAfter <= 0 {
		opts.OnDeath = func() {
			// An abrupt exit, not a graceful drain: the coordinator must see
			// the same failure a kill -9 would produce. The profiles and the
			// span log are flushed first — a crash-test run is exactly when
			// they matter.
			fmt.Fprintf(os.Stderr, "gfdfrag: dying after %d frames (-die-after)\n", *dieAfter)
			tracer.Event("die", "frames", fmt.Sprint(*dieAfter))
			tracer.Close()
			prof.Stop()
			os.Exit(3)
		}
	}

	if *resurrectAfter > 0 {
		if err := serveResurrecting(*frag, *listen, opts, *resurrectAfter, *announce); err != nil {
			fmt.Fprintf(os.Stderr, "gfdfrag: %v\n", err)
			return 1
		}
		return 0
	}

	ready := make(chan net.Addr, 1)
	go func() {
		addr := <-ready
		// The bound address is the first stdout line — coordinators and
		// tests parse it, which is what makes -listen :0 usable.
		fmt.Printf("listening %s\n", addr)
		tracer.Event("serve", "addr", addr.String())
		tracer.Flush()
		if *announce != "" {
			if err := announceTo(*announce, *frag, addr.String()); err != nil {
				fmt.Fprintf(os.Stderr, "gfdfrag: announce: %v\n", err)
			}
		}
	}()
	if err := remote.ListenAndServe(*frag, *listen, opts, ready); err != nil {
		fmt.Fprintf(os.Stderr, "gfdfrag: %v\n", err)
		return 1
	}
	return 0
}

// announceTo registers the served fragment with a coordinator's
// membership registry. The fragment file is mapped a second time just
// to read its identity — cheap (mmap, no copy) and independent of the
// serving mapping's lifecycle. Retries cover the usual race of fragment
// servers starting before the coordinator's registry is up.
func announceTo(registry, fragPath, addr string) error {
	m, err := store.Open(fragPath)
	if err != nil {
		return err
	}
	defer m.Close()
	fi, has := m.Fragment()
	if !has {
		return fmt.Errorf("%s carries no fragment metadata (not a frag-N.gfds spill file?)", fragPath)
	}
	info := remote.AnnounceInfo{
		Worker:      fi.Worker,
		Addr:        addr,
		NodeLo:      fi.NodeLo,
		NodeHi:      fi.NodeHi,
		NumEdges:    m.NumEdges(),
		Fingerprint: remote.Fingerprint(m),
	}
	epoch, err := remote.Announce(context.Background(), registry, info, remote.Options{
		Backoff: remote.Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second, Factor: 2, Jitter: 0.5, Attempts: 30},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gfdfrag: announced worker %d at %s to %s (epoch %d)\n", fi.Worker, addr, registry, epoch)
	tracer.Event("announce", "worker", fmt.Sprint(fi.Worker), "addr", addr, "epoch", fmt.Sprint(epoch))
	tracer.Flush()
	return nil
}

// serveResurrecting runs the die-once-then-recover lifecycle in one
// process: serve with the death trap armed, and when DieAfter fires
// (Serve returns after the abrupt connection drop), rebind the same
// bound address after the delay and serve the same mapping indefinitely.
func serveResurrecting(fragPath, listen string, opts remote.ServerOptions, delay time.Duration, announce string) error {
	m, err := store.Open(fragPath)
	if err != nil {
		return err
	}
	defer m.Close()
	if _, has := m.Fragment(); !has {
		return fmt.Errorf("%s carries no fragment metadata (not a frag-N.gfds spill file?)", fragPath)
	}
	s, err := remote.NewServer(m, opts)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	addr := l.Addr().String()
	fmt.Printf("listening %s\n", addr)
	tracer.Event("serve", "addr", addr)
	tracer.Flush()
	if announce != "" {
		go func() {
			if err := announceTo(announce, fragPath, addr); err != nil {
				fmt.Fprintf(os.Stderr, "gfdfrag: announce: %v\n", err)
			}
		}()
	}
	s.Serve(l)
	if opts.DieAfter <= 0 {
		return nil // external Close: a clean shutdown, nothing to resurrect
	}
	fmt.Fprintf(os.Stderr, "gfdfrag: died after %d frames; resurrecting on %s in %s\n", opts.DieAfter, addr, delay)
	tracer.Event("die", "frames", fmt.Sprint(opts.DieAfter))
	tracer.Flush()
	time.Sleep(delay)
	opts.DieAfter = 0 // the recovered incarnation stays up
	s2, err := remote.NewServer(m, opts)
	if err != nil {
		return err
	}
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rebinding %s: %w", addr, err)
	}
	fmt.Printf("resurrected %s\n", addr)
	tracer.Event("resurrect", "addr", addr)
	tracer.Flush()
	if announce != "" {
		// Re-announce: the coordinator's monitor has likely declared this
		// worker dead and dropped it from the map; a fresh announcement
		// lets the balancer adopt the recovered server at the next
		// superstep boundary even without client-side failback probing.
		go func() {
			if err := announceTo(announce, fragPath, addr); err != nil {
				fmt.Fprintf(os.Stderr, "gfdfrag: announce: %v\n", err)
			}
		}()
	}
	return s2.Serve(l2)
}
