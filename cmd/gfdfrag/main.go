// Command gfdfrag is a ParDis fragment server: it mmaps one spilled
// fragment snapshot (frag-N.gfds, written by a coordinator's Spill) and
// serves that worker's share of the distributed incremental join over
// the remote package's frame protocol. A coordinator (gfddiscover, or
// any remote.Dial client) joins row-table batches against it exactly as
// it would against a local mmap view — the mining output is identical.
//
// The process is stateless beyond its mapping: killing it mid-mine is
// always safe, because the coordinator fails over to the same frag-N.gfds
// file the server was started from.
//
// Examples:
//
//	gfdfrag -frag /data/frags/frag-1.gfds -listen :7701
//	gfdfrag -frag frag-0.gfds -listen 127.0.0.1:0            # prints the bound port
//	gfdfrag -frag frag-2.gfds -listen :7702 -fault drop=0.05,seed=1
//	gfdfrag -frag frag-1.gfds -listen :7701 -die-after 100   # crash-test the coordinator
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"repro/internal/remote"
)

func main() {
	frag := flag.String("frag", "", "fragment snapshot to serve (a frag-N.gfds written by Spill)")
	listen := flag.String("listen", "127.0.0.1:0", "listen address (port 0 picks a free port, printed on stdout)")
	fault := flag.String("fault", "", "fault injection spec: drop=P,corrupt=P,delay=D,closeafter=N,seed=S")
	dieAfter := flag.Int("die-after", 0, "exit(3) abruptly after serving this many frames (simulates a worker crash)")
	flag.Parse()

	if *frag == "" {
		fmt.Fprintln(os.Stderr, "gfdfrag: -frag is required")
		os.Exit(2)
	}
	spec, err := remote.ParseFaultSpec(*fault)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gfdfrag: %v\n", err)
		os.Exit(2)
	}
	opts := remote.ServerOptions{
		Fault:    spec,
		DieAfter: *dieAfter,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "gfdfrag: "+format+"\n", args...)
		},
	}
	if *dieAfter > 0 {
		opts.OnDeath = func() {
			// An abrupt exit, not a graceful drain: the coordinator must see
			// the same failure a kill -9 would produce.
			fmt.Fprintf(os.Stderr, "gfdfrag: dying after %d frames (-die-after)\n", *dieAfter)
			os.Exit(3)
		}
	}

	ready := make(chan net.Addr, 1)
	go func() {
		addr := <-ready
		// The bound address is the first stdout line — coordinators and
		// tests parse it, which is what makes -listen :0 usable.
		fmt.Printf("listening %s\n", addr)
	}()
	if err := remote.ListenAndServe(*frag, *listen, opts, ready); err != nil {
		fmt.Fprintf(os.Stderr, "gfdfrag: %v\n", err)
		os.Exit(1)
	}
}
