// Command graphgen generates the reproduction datasets — the paper-spec
// synthetic graphs and the DBpedia/YAGO2/IMDB-shaped simulators — and
// writes them in the TSV graph format and/or as a binary snapshot
// (-snapshot), optionally with injected noise. Snapshots open zero-copy
// in gfddiscover/gfdbench, so the whole pipeline can run TSV-free.
//
// Examples:
//
//	graphgen -dataset yago2 -scale 800 -out yago2.tsv
//	graphgen -dataset yago2 -scale 800 -snapshot yago2.gfds
//	graphgen -dataset synthetic -nodes 30000 -edges 60000 -out syn.tsv
//	graphgen -dataset imdb -scale 1000 -noise 10 -out imdb-dirty.tsv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/store"
)

func main() {
	ds := flag.String("dataset", "synthetic", "dataset: synthetic | yago2 | dbpedia | imdb")
	scale := flag.Int("scale", 1000, "generator scale (entities)")
	nodes := flag.Int("nodes", 0, "synthetic only: node count (overrides -scale)")
	edges := flag.Int("edges", 0, "synthetic only: edge count (default 2×nodes)")
	skew := flag.Float64("skew", 0, "synthetic only: power-law endpoint exponent > 1 (hub-heavy degree distribution; 0 = default mild hubs)")
	seed := flag.Int64("seed", 42, "generator seed")
	noise := flag.Float64("noise", 0, "inject noise into this percentage of nodes (α); β is 50%")
	out := flag.String("out", "", "TSV output path (default stdout unless -snapshot is given)")
	snap := flag.String("snapshot", "", "also write a binary snapshot (.gfds) to this path")
	flag.Parse()

	if *skew != 0 && *ds != "synthetic" {
		fmt.Fprintln(os.Stderr, "graphgen: -skew applies to the synthetic dataset only")
		os.Exit(2)
	}
	var g *graph.Graph
	switch *ds {
	case "synthetic":
		n := *nodes
		if n == 0 {
			n = *scale
		}
		e := *edges
		if e == 0 {
			e = 2 * n
		}
		g = dataset.Synthetic(dataset.SyntheticConfig{Nodes: n, Edges: e, Seed: *seed, Skew: *skew})
	case "yago2":
		g = dataset.YAGO2Sim(*scale, *seed)
	case "dbpedia":
		g = dataset.DBpediaSim(*scale, *seed)
	case "imdb":
		g = dataset.IMDBSim(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown dataset %q\n", *ds)
		os.Exit(2)
	}

	if *noise > 0 {
		var dirty map[graph.NodeID]bool
		g, dirty = dataset.Noise(g, dataset.NoiseConfig{AlphaPct: *noise, BetaPct: 50, Seed: *seed})
		fmt.Fprintf(os.Stderr, "graphgen: injected errors into %d nodes\n", len(dirty))
	}

	if *snap != "" {
		if err := store.WriteFile(*snap, g); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "graphgen: wrote snapshot %s\n", *snap)
	}
	if *out != "" || *snap == "" {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := graph.Write(w, g); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "graphgen: wrote %v\n", g)
}
