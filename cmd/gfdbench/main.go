// Command gfdbench runs the paper-reproduction experiments: one table or
// figure of Fan et al. (SIGMOD 2018) per experiment ID, printing the same
// rows/series the paper reports (at harness scale).
//
// Usage:
//
//	gfdbench [flags] <experiment>...
//	gfdbench -list
//	gfdbench all
//
// Experiments: fig5a..fig5l, fig6, fig7, fig8, infeas.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier (1.0 = harness defaults, ~1/500 of the paper's)")
	seed := flag.Int64("seed", 42, "generator seed")
	workers := flag.String("workers", "4,8,12,16,20", "comma-separated worker counts for n-sweeps")
	verbose := flag.Bool("v", false, "print progress while running")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: gfdbench [flags] <experiment>... | all   (-list to enumerate)")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = bench.IDs()
	}

	var ws []int
	for _, part := range strings.Split(*workers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "gfdbench: bad -workers entry %q\n", part)
			os.Exit(2)
		}
		ws = append(ws, n)
	}
	cfg := bench.Config{Scale: *scale, Seed: *seed, Workers: ws, Verbose: *verbose, Out: os.Stdout}

	exit := 0
	for _, id := range args {
		start := time.Now()
		t, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gfdbench: %v\n", err)
			exit = 1
			continue
		}
		t.Fprint(os.Stdout)
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exit)
}
