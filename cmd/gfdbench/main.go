// Command gfdbench runs the paper-reproduction experiments: one table or
// figure of Fan et al. (SIGMOD 2018) per experiment ID, printing the same
// rows/series the paper reports (at harness scale).
//
// Usage:
//
//	gfdbench [flags] <experiment>...
//	gfdbench -list
//	gfdbench all
//	gfdbench -json results.json micro fig5a
//	gfdbench -compare BENCH_pr7.json micro
//	gfdbench -compare BENCH_pr7.json BENCH_pr8.json
//	gfdbench -trace-report run.jsonl
//
// Experiments: fig5a..fig5l, fig6, fig7, fig8, infeas, plus the
// pseudo-experiment "micro" (the core micro-benchmark suite, including
// the fragment-view per-worker cost benches and the snapshot-vs-TSV load
// micros). With -trace-report the only work done is summarizing a span
// trace written by gfddiscover -trace: a per-phase time breakdown and
// share-latency quantiles. With -compare old.json, micro results — freshly measured, or
// from a second .json given as the sole positional argument — are diffed
// against the baseline file with >10% slowdowns flagged (report-only).
// With -in the micro suite runs over a user-supplied graph —
// TSV or binary snapshot, auto-detected by magic bytes — instead of the
// built-in DBpediaSim workload. With -json, every measurement taken
// during the run — micro ns/op, B/op, allocs/op and experiment wall
// times — is also written machine-readably, the format of the committed
// BENCH_baseline.json trajectory file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

// jsonOutput is the machine-readable result file schema (BENCH_baseline.json).
type jsonOutput struct {
	Schema      int                 `json:"schema"`
	Note        string              `json:"note,omitempty"`
	Scale       float64             `json:"scale"`
	Seed        int64               `json:"seed"`
	Workers     []int               `json:"workers"`
	Micro       []bench.MicroResult `json:"micro,omitempty"`
	Experiments []experimentResult  `json:"experiments,omitempty"`
	// ShareLatency summarises the remote join-share latency histogram
	// (gfd_remote_share_seconds) accumulated across the run's remote
	// micros; omitted when the run made no remote share calls.
	ShareLatency *shareLatency `json:"share_latency,omitempty"`
}

type experimentResult struct {
	ID     string `json:"id"`
	WallNs int64  `json:"wall_ns"`
}

// shareLatency reports remote share-call latency quantiles in
// nanoseconds (log2-bucket upper bounds from the metrics registry).
type shareLatency struct {
	Count int64 `json:"count"`
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// shareLatencySnapshot reads the process-wide share histogram; nil when
// no remote share calls happened.
func shareLatencySnapshot() *shareLatency {
	h := obs.Default.Histogram("gfd_remote_share_seconds")
	if h.Count() == 0 {
		return nil
	}
	return &shareLatency{
		Count: h.Count(),
		P50Ns: h.Quantile(0.50),
		P95Ns: h.Quantile(0.95),
		P99Ns: h.Quantile(0.99),
	}
}

// noteFor records a non-default micro input in the result file, so a
// reviewer diffing BENCH_*.json files can tell the workloads apart.
func noteFor(in string) string {
	if in == "" {
		return ""
	}
	return "micro input: " + in
}

func loadResults(path string) (*jsonOutput, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r jsonOutput
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &r, nil
}

// compareMicro prints a per-micro delta table between a baseline result
// file and fresher measurements (a second file, or the micros of the run
// just completed). Entries more than 10% slower are flagged REGRESSION;
// the report never changes the exit status — micro timings on shared CI
// runners are too noisy to gate on, the flag is for a human eyeball.
func compareMicro(oldName string, oldMicro []bench.MicroResult, newName string, newMicro []bench.MicroResult) {
	fmt.Printf("== compare: %s vs %s ==\n", oldName, newName)
	if len(newMicro) == 0 {
		fmt.Println("(no micro results in the newer run)")
		return
	}
	old := make(map[string]bench.MicroResult, len(oldMicro))
	for _, m := range oldMicro {
		old[m.Name] = m
	}
	regressions := 0
	for _, m := range newMicro {
		o, ok := old[m.Name]
		if !ok || o.NsPerOp == 0 {
			fmt.Printf("%-32s %12.1f ns/op   (new: no baseline)\n", m.Name, m.NsPerOp)
			continue
		}
		delta := (m.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		flag := ""
		if delta > 10 {
			flag = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-32s %12.1f -> %12.1f ns/op  %+7.1f%%%s\n", m.Name, o.NsPerOp, m.NsPerOp, delta, flag)
	}
	for _, m := range oldMicro {
		found := false
		for _, n := range newMicro {
			if n.Name == m.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-32s %12.1f ns/op   (dropped: baseline only)\n", m.Name, m.NsPerOp)
		}
	}
	if regressions > 0 {
		fmt.Printf("%d micro(s) regressed >10%% (report-only)\n", regressions)
	} else {
		fmt.Println("no micro regressed >10%")
	}
}

// traceReport summarizes a JSONL span trace (gfddiscover -trace): a
// per-name time breakdown plus share-span latency quantiles computed
// from the actual recorded durations (exact, unlike the log2-bucket
// registry quantiles).
func traceReport(path string) int {
	spans, err := obs.ReadSpansFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gfdbench: %v\n", err)
		return 1
	}
	if len(spans) == 0 {
		fmt.Printf("== trace report: %s ==\n(no spans)\n", path)
		return 0
	}

	type agg struct {
		name    string
		count   int
		totalNs int64
	}
	byName := map[string]*agg{}
	var order []string
	var shares []int64
	lo, hi := spans[0].StartNs, spans[0].StartNs
	for _, s := range spans {
		a := byName[s.Name]
		if a == nil {
			a = &agg{name: s.Name}
			byName[s.Name] = a
			order = append(order, s.Name)
		}
		a.count++
		a.totalNs += s.DurNs
		if s.Name == "share" {
			shares = append(shares, s.DurNs)
		}
		if s.StartNs < lo {
			lo = s.StartNs
		}
		if end := s.StartNs + s.DurNs; end > hi {
			hi = end
		}
	}
	sort.Slice(order, func(i, j int) bool { return byName[order[i]].totalNs > byName[order[j]].totalNs })

	fmt.Printf("== trace report: %s ==\n", path)
	fmt.Printf("%d spans over %v\n\n", len(spans), time.Duration(hi-lo).Round(time.Microsecond))
	fmt.Printf("%-16s %8s %14s %14s\n", "name", "count", "total", "mean")
	for _, name := range order {
		a := byName[name]
		mean := time.Duration(0)
		if a.count > 0 {
			mean = time.Duration(a.totalNs / int64(a.count))
		}
		fmt.Printf("%-16s %8d %14v %14v\n", a.name, a.count,
			time.Duration(a.totalNs).Round(time.Microsecond), mean.Round(time.Microsecond))
	}
	if len(shares) > 0 {
		sort.Slice(shares, func(i, j int) bool { return shares[i] < shares[j] })
		q := func(p float64) time.Duration {
			return time.Duration(shares[int(p*float64(len(shares)-1))])
		}
		fmt.Printf("\nshare latency (%d spans): p50 %v  p95 %v  p99 %v\n",
			len(shares), q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond), q(0.99).Round(time.Microsecond))
	}
	return 0
}

func main() {
	// run + deferred cleanup, so the micro suite's temp snapshot is
	// removed on every exit path (os.Exit skips defers).
	code := run()
	bench.CleanupMicro()
	os.Exit(code)
}

func run() int {
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier (1.0 = harness defaults, ~1/500 of the paper's)")
	in := flag.String("in", "", "run the micro suite over this graph, TSV or snapshot (.gfds), auto-detected")
	seed := flag.Int64("seed", 42, "generator seed")
	workers := flag.String("workers", "4,8,12,16,20", "comma-separated worker counts for n-sweeps")
	verbose := flag.Bool("v", false, "print progress while running")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	jsonPath := flag.String("json", "", "write machine-readable results (micro ns/op, B/op, allocs/op and experiment wall times) to this file")
	compare := flag.String("compare", "", "diff micro results against this baseline .json; entries >10% slower are flagged REGRESSION (report-only, exit status unchanged)")
	traceReportPath := flag.String("trace-report", "", "summarize a span trace written with -trace (per-phase time breakdown, share latency quantiles) and exit")
	flag.Parse()

	if *traceReportPath != "" {
		return traceReport(*traceReportPath)
	}
	if *list {
		fmt.Println("micro")
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return 0
	}
	args := flag.Args()
	if *compare != "" && len(args) == 1 && strings.HasSuffix(args[0], ".json") {
		// File-vs-file mode: diff two committed result files without
		// running anything (gfdbench -compare old.json new.json).
		oldR, err := loadResults(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gfdbench: %v\n", err)
			return 1
		}
		newR, err := loadResults(args[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "gfdbench: %v\n", err)
			return 1
		}
		compareMicro(*compare, oldR.Micro, args[0], newR.Micro)
		return 0
	}
	if len(args) == 0 && (*jsonPath != "" || *compare != "") {
		args = []string{"micro"}
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: gfdbench [flags] <experiment>... | all | micro   (-list to enumerate)")
		return 2
	}
	if len(args) == 1 && args[0] == "all" {
		args = bench.IDs()
	}

	var ws []int
	for _, part := range strings.Split(*workers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "gfdbench: bad -workers entry %q\n", part)
			return 2
		}
		ws = append(ws, n)
	}
	if *in != "" {
		// -in reroutes only the micro suite; running it alongside dataset
		// experiments would silently attribute generated-dataset numbers
		// to the user's graph in the JSON note.
		for _, id := range args {
			if id != "micro" {
				fmt.Fprintf(os.Stderr, "gfdbench: -in applies only to the micro suite (got experiment %q)\n", id)
				return 2
			}
		}
		if err := bench.SetMicroInput(*in); err != nil {
			fmt.Fprintf(os.Stderr, "gfdbench: %v\n", err)
			return 1
		}
	}
	cfg := bench.Config{Scale: *scale, Seed: *seed, Workers: ws, Verbose: *verbose, Out: os.Stdout}
	results := jsonOutput{Schema: 1, Note: noteFor(*in), Scale: *scale, Seed: *seed, Workers: ws}

	exit := 0
	for _, id := range args {
		if id == "micro" {
			start := time.Now()
			ms := bench.Micro()
			results.Micro = append(results.Micro, ms...)
			fmt.Println("== micro: core matching micro-benchmarks ==")
			for _, m := range ms {
				fmt.Printf("%-28s %12.1f ns/op %10d B/op %8d allocs/op  (n=%d)\n",
					m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp, m.Iterations)
			}
			fmt.Printf("(micro completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
			continue
		}
		start := time.Now()
		t, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gfdbench: %v\n", err)
			exit = 1
			continue
		}
		wall := time.Since(start)
		results.Experiments = append(results.Experiments, experimentResult{ID: id, WallNs: wall.Nanoseconds()})
		t.Fprint(os.Stdout)
		fmt.Printf("(%s completed in %v)\n\n", id, wall.Round(time.Millisecond))
	}

	if *compare != "" {
		oldR, err := loadResults(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gfdbench: %v\n", err)
			return 1
		}
		compareMicro(*compare, oldR.Micro, "this run", results.Micro)
	}

	results.ShareLatency = shareLatencySnapshot()

	if *jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "gfdbench: marshal results: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "gfdbench: write %s: %v\n", *jsonPath, err)
			return 1
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return exit
}
