package gfd

// This file regenerates every table and figure of the paper's evaluation
// (Section 7) as Go benchmarks — one Benchmark per figure/table, plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// runs the corresponding experiment of internal/bench and logs the
// resulting table (visible with `go test -bench=. -v` or in -benchmem
// runs); EXPERIMENTS.md records paper-vs-measured values.
//
// Scale: set GFD_BENCH_SCALE (e.g. 0.5 or 2.0) to shrink or grow the
// datasets; default 1.0 is roughly 1/500 of the paper's setting.

import (
	"context"
	"os"
	"strconv"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/discovery"
	"repro/internal/match"
	"repro/internal/parallel"
)

func benchConfig() bench.Config {
	scale := 1.0
	if s := os.Getenv("GFD_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			scale = v
		}
	}
	// Three worker points keep the full -bench sweep affordable on one
	// core; cmd/gfdbench defaults to the paper's five.
	return bench.Config{Scale: scale, Workers: []int{4, 12, 20}}
}

// TestMain removes the micro workload's temp snapshot after -bench runs
// (no-op when the micro suite never ran).
func TestMain(m *testing.M) {
	code := m.Run()
	bench.CleanupMicro()
	os.Exit(code)
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		t, err := bench.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb logWriter
			t.Fprint(&sb)
			b.Log("\n" + string(sb))
		}
	}
}

type logWriter []byte

func (w *logWriter) Write(p []byte) (int, error) { *w = append(*w, p...); return len(p), nil }

// --- One benchmark per figure/table ---

func BenchmarkFig5a(b *testing.B) { runExperiment(b, "fig5a") } // DisGFD vs ParGFDnb, DBpedia
func BenchmarkFig5b(b *testing.B) { runExperiment(b, "fig5b") } // ... YAGO2
func BenchmarkFig5c(b *testing.B) { runExperiment(b, "fig5c") } // ... IMDB
func BenchmarkFig5d(b *testing.B) { runExperiment(b, "fig5d") } // GFD vs GCFD vs AMIE
func BenchmarkFig5e(b *testing.B) { runExperiment(b, "fig5e") } // varying |G|
func BenchmarkFig5f(b *testing.B) { runExperiment(b, "fig5f") } // varying k
func BenchmarkFig5g(b *testing.B) { runExperiment(b, "fig5g") } // varying σ
func BenchmarkFig5h(b *testing.B) { runExperiment(b, "fig5h") } // varying |Γ|
func BenchmarkFig5i(b *testing.B) { runExperiment(b, "fig5i") } // ParCover vs ParCovern, DBpedia
func BenchmarkFig5j(b *testing.B) { runExperiment(b, "fig5j") } // ... YAGO2
func BenchmarkFig5k(b *testing.B) { runExperiment(b, "fig5k") } // ... IMDB
func BenchmarkFig5l(b *testing.B) { runExperiment(b, "fig5l") } // varying |Σ|
func BenchmarkFig6(b *testing.B)  { runExperiment(b, "fig6") }  // sequential cost table
func BenchmarkFig7(b *testing.B)  { runExperiment(b, "fig7") }  // accuracy table
func BenchmarkFig8(b *testing.B)  { runExperiment(b, "fig8") }  // qualitative GFDs

// BenchmarkInfeasibleBaselines measures the ParGFDn / ParArab blow-up.
func BenchmarkInfeasibleBaselines(b *testing.B) { runExperiment(b, "infeas") }

// --- Ablation benches (design choices called out in DESIGN.md §4) ---

func ablationGraph() (*Graph, DiscoverOptions) {
	g := dataset.YAGO2Sim(400, 42)
	opts := DiscoverOptions{
		K: 3, Support: 25, ConstantsPerAttr: 5, MaxX: 1, WildcardNodes: true,
		MaxExtensionsPerPattern: 20, MaxPatternsPerLevel: 100, MaxLevels: 4,
		MaxNegatives: 100,
	}
	return g, opts
}

// BenchmarkAblationPruning compares integrated mining with and without the
// Lemma 4 prunings (budgeted, so the unpruned run terminates).
func BenchmarkAblationPruning(b *testing.B) {
	g, opts := ablationGraph()
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := discovery.Mine(g, opts)
			b.ReportMetric(float64(res.Stats.CandidatesChecked), "candidates")
		}
	})
	b.Run("unpruned", func(b *testing.B) {
		o := opts
		o.DisablePruning = true
		o.CandidateBudget = 300000
		for i := 0; i < b.N; i++ {
			res := discovery.Mine(g, o)
			b.ReportMetric(float64(res.Stats.CandidatesChecked), "candidates")
		}
	})
}

// BenchmarkAblationDecoupled compares integrated vs two-phase (ParArab).
func BenchmarkAblationDecoupled(b *testing.B) {
	g, opts := ablationGraph()
	b.Run("integrated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := discovery.Mine(g, opts)
			b.ReportMetric(float64(res.Stats.TotalTableRows), "table-rows")
		}
	})
	b.Run("decoupled", func(b *testing.B) {
		o := opts
		o.Decoupled = true
		for i := 0; i < b.N; i++ {
			res := discovery.Mine(g, o)
			b.ReportMetric(float64(res.Stats.TotalTableRows), "table-rows")
		}
	})
}

// BenchmarkAblationBalance compares simulated response time with and
// without match redistribution on a skewed graph.
func BenchmarkAblationBalance(b *testing.B) {
	g, opts := ablationGraph()
	for _, mode := range []struct {
		name string
		lb   bool
	}{{"balanced", true}, {"unbalanced", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := cluster.New(cluster.Config{Workers: 8})
				res := parallel.Mine(context.Background(), g, opts, eng, parallel.Options{LoadBalance: mode.lb})
				b.ReportMetric(res.Cluster.Total().Seconds(), "sim-s")
				b.ReportMetric(res.Cluster.Skew(), "skew")
			}
		})
	}
}

// BenchmarkAblationGrouping compares cover computation with and without
// Lemma 6 grouping.
func BenchmarkAblationGrouping(b *testing.B) {
	g, _ := ablationGraph()
	sigma := dataset.GenGFDs(g, dataset.GFDGenConfig{Count: 800, K: 3, Seed: 7})
	for _, mode := range []struct {
		name string
		grp  bool
	}{{"grouped", true}, {"ungrouped", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := cluster.New(cluster.Config{Workers: 8})
				res := parallel.Cover(sigma, nil, eng, parallel.CoverOptions{Grouping: mode.grp})
				b.ReportMetric(res.CoverTime().Seconds(), "sim-s")
			}
		})
	}
}

// BenchmarkAblationSupportDef contrasts the paper's pivoted support with
// the naive match-count support it rejects: pivoted support is cheaper to
// maintain under extension and anti-monotone (see eval tests).
func BenchmarkAblationSupportDef(b *testing.B) {
	g, _ := ablationGraph()
	p := SingleEdge("person", "hasChild", Wildcard)
	b.Run("pivoted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			match.PatternSupport(g, p)
		}
	})
	b.Run("match-count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			match.CountMatches(g, p, 0)
		}
	})
}

// --- Micro-benchmarks of the core machinery ---

// BenchmarkMicro runs the shared micro suite (internal/bench.MicroSpecs):
// the same bodies gfdbench -json measures, including the fragment-view
// benches that pin the ParDis refactor's claim — per-worker match cost
// (PivotNodes against one n=4 fragment's SubCSR; ExtendRows over one
// worker's row share and view order) sits measurably below the full-graph
// cost, scaling with fragment size rather than |G|.
func BenchmarkMicro(b *testing.B) {
	for _, s := range bench.MicroSpecs() {
		b.Run(s.Name, s.Fn)
	}
}

func BenchmarkMatcherEnumerate(b *testing.B) {
	g := dataset.YAGO2Sim(400, 42)
	p := SingleEdge(Wildcard, "citizenOf", "country")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		match.CountMatches(g, p, 0)
	}
}

// dbpediaBenchWorkload returns a DBpedia-shaped graph and a 2-edge path
// pattern over its frequent types, the pivoted-matching workload that
// dominates SeqDis/ParDis and every Fig. 5 benchmark.
func dbpediaBenchWorkload() (*Graph, *Pattern) {
	g := dataset.DBpediaSim(2000, 42)
	// x0:T00 -r00-> x1:T01 -r01-> x2:T02, pivoted at x0 (relation r_k
	// prefers source type T_k and destination type T_{k+1}).
	p := SingleEdge("T00", "r00", "T01").ExtendNewNode(1, "r01", "T02", true)
	return g, p
}

func BenchmarkPivotNodes(b *testing.B) {
	g, p := dbpediaBenchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pivots := match.PivotNodes(g, p); len(pivots) == 0 {
			b.Fatal("workload pattern has no pivots")
		}
	}
}

func BenchmarkMatchesAt(b *testing.B) {
	g, p := dbpediaBenchWorkload()
	cands := g.NodesByLabel("T00")
	if len(cands) == 0 {
		b.Fatal("no candidate pivots")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		match.MatchesAt(g, p, cands[i%len(cands)], func(match.Match) bool {
			n++
			return true
		})
	}
}

// BenchmarkExtendRows measures one incremental join Q(t) ⋈ e(G) on the
// DBpediaSim workload — the dominant per-level operation of SeqDis/ParDis.
// The columnar table appends cells to flat per-variable columns, so
// allocations are slice growth only, not one slice per output row.
func BenchmarkExtendRows(b *testing.B) {
	g, p := dbpediaBenchWorkload()
	parent := SingleEdge("T00", "r00", "T01")
	t1 := match.EdgeMatches(g, parent, nil)
	if t1.Len() == 0 {
		b.Fatal("empty parent table")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2 := match.ExtendRows(g, t1, p)
		if t2.Len() == 0 {
			b.Fatal("empty extension")
		}
	}
}

// BenchmarkTableSupport measures distinct-pivot counting over a
// materialised table — a bitset scan of the pivot column.
func BenchmarkTableSupport(b *testing.B) {
	g, p := dbpediaBenchWorkload()
	parent := SingleEdge("T00", "r00", "T01")
	t2 := match.ExtendRows(g, match.EdgeMatches(g, parent, nil), p)
	if t2.Len() == 0 {
		b.Fatal("empty table")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t2.Support() == 0 {
			b.Fatal("no support")
		}
	}
}

func BenchmarkImplication(b *testing.B) {
	g := dataset.YAGO2Sim(200, 42)
	sigma := dataset.GenGFDs(g, dataset.GFDGenConfig{Count: 300, K: 3, Seed: 7})
	phi := sigma[len(sigma)-1]
	rest := sigma[:len(sigma)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Implies(rest, phi)
	}
}

func BenchmarkValidation(b *testing.B) {
	g := dataset.YAGO2Sim(400, 42)
	phi := New(SingleEdge(Wildcard, "hasChild", Wildcard), nil,
		Vars(0, "familyname", 1, "familyname"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Validate(g, phi)
	}
}
