package gfd

// OS-process golden tests for the distributed runtime: real gfdfrag
// server processes serve spilled fragments over loopback TCP while the
// coordinator mines in this process — output must be byte-identical to
// the committed golden file, including when a server is killed mid-mine
// and the coordinator fails over to the worker's spill file.

import (
	"bufio"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/remote"
)

func loadGoldenBytes(t *testing.T) []byte {
	t.Helper()
	want, err := os.ReadFile(goldenGFDsPath)
	if err != nil {
		t.Fatalf("read golden file: %v", err)
	}
	return want
}

var gfdfragBin struct {
	once sync.Once
	path string
	err  error
}

// buildGfdfrag builds the fragment-server binary once per test process.
func buildGfdfrag(t *testing.T) string {
	t.Helper()
	gfdfragBin.once.Do(func() {
		// Not t.TempDir: the binary must outlive the first test that builds
		// it. The directory is removed by whichever test runs last, via the
		// process-exit cleanup go test performs on os.MkdirTemp children of
		// its own work dir — or by the OS's tmp reaping.
		dir, err := os.MkdirTemp("", "gfdfrag-test-")
		if err != nil {
			gfdfragBin.err = err
			return
		}
		bin := filepath.Join(dir, "gfdfrag")
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/gfdfrag")
		if out, err := cmd.CombinedOutput(); err != nil {
			gfdfragBin.err = err
			t.Logf("go build ./cmd/gfdfrag: %s", out)
			return
		}
		gfdfragBin.path = bin
	})
	if gfdfragBin.err != nil {
		t.Fatalf("build gfdfrag: %v", gfdfragBin.err)
	}
	return gfdfragBin.path
}

// startFragProcess launches one gfdfrag OS process on a free port and
// returns its bound address plus the command handle.
func startFragProcess(t *testing.T, bin, fragPath string, extra ...string) (string, *exec.Cmd) {
	t.Helper()
	args := append([]string{"-frag", fragPath, "-listen", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start gfdfrag: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("gfdfrag produced no address line: %v", sc.Err())
	}
	line := sc.Text()
	addr, ok := strings.CutPrefix(line, "listening ")
	if !ok {
		t.Fatalf("unexpected gfdfrag output %q", line)
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return addr, cmd
}

// TestGoldenMiningRemoteProcess: ParDis with workers split across OS
// processes mines the committed golden bytes exactly — worker 0 joins
// against its local mmap, the rest against gfdfrag servers.
func TestGoldenMiningRemoteProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildGfdfrag(t)
	g := loadGoldenGraph(t)
	want := string(loadGoldenBytes(t))

	for _, workers := range []int{2, 4} {
		dir := t.TempDir()
		if err := parallel.Spill(dir, g, parallel.VertexCut(g, workers)); err != nil {
			t.Fatalf("n=%d: Spill: %v", workers, err)
		}
		att, err := parallel.Attach(dir)
		if err != nil {
			t.Fatalf("n=%d: Attach: %v", workers, err)
		}
		frags := make([]parallel.Fragment, workers)
		copy(frags, att.Frags)
		for w := 1; w < workers; w++ {
			fragPath := filepath.Join(dir, parallel.FragmentSnapshotName(w))
			addr, _ := startFragProcess(t, bin, fragPath)
			rf, err := remote.Dial(context.Background(), addr, att.Graph, remote.Options{
				FallbackPath: fragPath,
			})
			if err != nil {
				t.Fatalf("n=%d: dial worker %d: %v", workers, w, err)
			}
			defer rf.Close()
			frags[w].Sub = rf
		}
		eng := cluster.New(cluster.Config{Workers: workers})
		pr := parallel.MineFragments(context.Background(), att.Graph, frags, goldenOptions(), eng, parallel.Options{LoadBalance: true})
		got := canonicalize(pr.Result)
		if stats := eng.Stats(); stats.MeasuredBytes == 0 {
			t.Fatalf("n=%d: no wire traffic measured against the server processes", workers)
		}
		if err := att.Close(); err != nil {
			t.Fatalf("n=%d: Close: %v", workers, err)
		}
		if got != want {
			t.Fatalf("OS-process mining (n=%d) diverged from golden output.\n--- got ---\n%s--- want ---\n%s",
				workers, got, want)
		}
	}
}

// TestGoldenMiningRemoteProcessKilled: one server process dies abruptly
// mid-mine (-die-after → exit(3)); the coordinator fails over to that
// worker's spill file and the output stays byte-identical.
func TestGoldenMiningRemoteProcessKilled(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildGfdfrag(t)
	g := loadGoldenGraph(t)
	want := string(loadGoldenBytes(t))

	const workers = 3
	dir := t.TempDir()
	if err := parallel.Spill(dir, g, parallel.VertexCut(g, workers)); err != nil {
		t.Fatalf("Spill: %v", err)
	}
	att, err := parallel.Attach(dir)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	defer att.Close()

	frags := make([]parallel.Fragment, workers)
	copy(frags, att.Frags)
	var victim *remote.RemoteFragment
	var victimCmd *exec.Cmd
	for w := 1; w < workers; w++ {
		fragPath := filepath.Join(dir, parallel.FragmentSnapshotName(w))
		extra := []string{}
		if w == 1 {
			// The victim: drops dead partway through the Extend stream,
			// with a span log that must survive the abrupt exit.
			extra = []string{"-die-after", "30", "-trace", filepath.Join(dir, "victim.jsonl")}
		}
		addr, cmd := startFragProcess(t, bin, fragPath, extra...)
		rf, err := remote.Dial(context.Background(), addr, att.Graph, remote.Options{
			FallbackPath: fragPath,
			CallTimeout:  500 * time.Millisecond,
			Backoff:      remote.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Factor: 2, Jitter: 0.5, Attempts: 3},
		})
		if err != nil {
			t.Fatalf("dial worker %d: %v", w, err)
		}
		defer rf.Close()
		frags[w].Sub = rf
		if w == 1 {
			victim, victimCmd = rf, cmd
		}
	}

	eng := cluster.New(cluster.Config{Workers: workers})
	pr := parallel.MineFragments(context.Background(), att.Graph, frags, goldenOptions(), eng, parallel.Options{LoadBalance: true})
	got := canonicalize(pr.Result)
	if got != want {
		t.Fatalf("mining with a killed server diverged from golden output.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if !victim.FailedOver() {
		t.Fatal("victim server died but its fragment never failed over to the spill file")
	}
	// The server really did die abruptly: exit code 3, not a clean stop.
	if err := victimCmd.Wait(); err == nil {
		t.Fatal("victim process exited cleanly; -die-after should exit(3)")
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 3 {
		t.Fatalf("victim exit: %v, want exit status 3", err)
	}
	// The span log was fsynced and closed on the death path: the serve
	// and die events must be readable after exit(3).
	spans, err := obs.ReadSpansFile(filepath.Join(dir, "victim.jsonl"))
	if err != nil {
		t.Fatalf("victim trace unreadable after crash: %v", err)
	}
	names := make(map[string]bool, len(spans))
	for _, s := range spans {
		names[s.Name] = true
	}
	if !names["serve"] || !names["die"] {
		t.Fatalf("victim trace missing lifecycle events (got %v), want serve and die", spans)
	}
}

// TestGoldenMiningRemoteProcessFailback: the full recovery loop across OS
// processes. A gfdfrag with -die-after and -resurrect-after drops dead
// mid-mine (failover to the spill file, run 1 golden), then rebinds its
// original port; the failback-enabled coordinator rejoins it and a second
// mine goes back over the wire — golden again.
func TestGoldenMiningRemoteProcessFailback(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildGfdfrag(t)
	g := loadGoldenGraph(t)
	want := string(loadGoldenBytes(t))

	const workers = 3
	dir := t.TempDir()
	if err := parallel.Spill(dir, g, parallel.VertexCut(g, workers)); err != nil {
		t.Fatalf("Spill: %v", err)
	}
	att, err := parallel.Attach(dir)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	defer att.Close()

	frags := make([]parallel.Fragment, workers)
	copy(frags, att.Frags)
	var victim *remote.RemoteFragment
	for w := 1; w < workers; w++ {
		fragPath := filepath.Join(dir, parallel.FragmentSnapshotName(w))
		extra := []string{}
		if w == 1 {
			// The victim dies partway through the Extend stream, then
			// resurrects in-process on the same port.
			extra = []string{"-die-after", "30", "-resurrect-after", "100ms"}
		}
		addr, _ := startFragProcess(t, bin, fragPath, extra...)
		rf, err := remote.Dial(context.Background(), addr, att.Graph, remote.Options{
			FallbackPath:     fragPath,
			CallTimeout:      500 * time.Millisecond,
			Backoff:          remote.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Factor: 2, Jitter: 0.5, Attempts: 3},
			FailbackInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("dial worker %d: %v", w, err)
		}
		defer rf.Close()
		frags[w].Sub = rf
		if w == 1 {
			victim = rf
		}
	}

	eng := cluster.New(cluster.Config{Workers: workers})
	pr := parallel.MineFragments(context.Background(), att.Graph, frags, goldenOptions(), eng, parallel.Options{LoadBalance: true})
	if got := canonicalize(pr.Result); got != want {
		t.Fatalf("mining with a dying server diverged from golden output.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if !victim.FailedOver() && !victim.Rejoined() {
		t.Fatal("victim server died but its fragment never failed over")
	}

	// The resurrected process is back on its port; wait for the prober to
	// validate and rejoin it.
	deadline := time.Now().Add(15 * time.Second)
	for !victim.Rejoined() {
		if time.Now().After(deadline) {
			t.Fatal("fragment never failed back to the resurrected gfdfrag")
		}
		time.Sleep(10 * time.Millisecond)
	}

	eng2 := cluster.New(cluster.Config{Workers: workers})
	pr2 := parallel.MineFragments(context.Background(), att.Graph, frags, goldenOptions(), eng2, parallel.Options{LoadBalance: true})
	if got := canonicalize(pr2.Result); got != want {
		t.Fatalf("post-failback mining diverged from golden output.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if stats := eng2.Stats(); stats.MeasuredBytes == 0 {
		t.Fatal("post-failback mine measured no wire traffic; the rejoined server saw no shares")
	}
}
